"""Consistency rules: paired structures that must evolve together.

These catch the "added a counter in one place, forgot the other two"
class of bug: a new ``CCStats`` field that ``delta()`` silently drops, a
new ``ClusterResult`` counter the ``MetricsCollector`` never populates
(so every run reports 0 and nobody notices), or a worker loop blocking
on a queue with no way to ever wake up — the executor-pool hang class
PR 1 fixed with shutdown sentinels.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from tools.reprolint.engine import Module, Project
from tools.reprolint.findings import Finding
from tools.reprolint.registry import rule

# --------------------------------------------------------------------------
# shared: dataclass introspection
# --------------------------------------------------------------------------


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """field name -> line, in declaration order."""
    fields: Dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            fields[stmt.target.id] = stmt.lineno
    return fields


def _find_class(module: Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


# --------------------------------------------------------------------------
# C301 — snapshot()/delta() must cover every stats field
# --------------------------------------------------------------------------


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _covers_all_fields(func: ast.FunctionDef) -> bool:
    """Generic full-coverage implementations: ``replace(self)``,
    ``vars(self)``, ``dataclasses.fields``/``asdict``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = node.func.attr if isinstance(node.func, ast.Attribute) \
            else node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("replace", "vars", "fields", "asdict") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name) and first.id == "self":
                return True
    return False


def _explicit_keywords(func: ast.FunctionDef, cls_name: str) -> Optional[Set[str]]:
    """Field names an explicit ``ClsName(field=..., ...)`` construction
    lists; ``None`` when no such construction exists."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == cls_name and node.keywords:
            named = {kw.arg for kw in node.keywords if kw.arg is not None}
            if any(kw.arg is None for kw in node.keywords):
                # **kwargs construction: coverage decided by the mapping
                # expression, handled by _covers_all_fields.
                return None
            return named
    return None


@rule(id="C301", name="stats-pair")
def check_stats_pair(module: Module) -> Iterator[Finding]:
    """A stats dataclass whose ``snapshot()``/``delta()`` misses a field.

    Why: per-batch metrics off a long-lived controller are boundary
    deltas — ``BatchResult.stats = after.delta(before)``.  A counter
    missing from ``delta()`` reports cumulative garbage (double-counting
    every earlier batch); one missing from ``snapshot()`` silently reads
    0.  Generic implementations (``replace(self)``, ``vars(self)``,
    ``dataclasses.fields``) cover every field by construction; explicit
    field lists must be complete.
    """
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and _is_dataclass(node)):
            continue
        snapshot = _method(node, "snapshot")
        delta = _method(node, "delta")
        if snapshot is None or delta is None:
            continue
        fields = _dataclass_fields(node)
        for func in (snapshot, delta):
            if _covers_all_fields(func):
                continue
            listed = _explicit_keywords(func, node.name)
            if listed is None:
                continue  # construction style we cannot see through
            missing = sorted(set(fields) - listed)
            if missing:
                yield module.finding(
                    "C301", func,
                    f"{node.name}.{func.name}() does not carry field(s) "
                    f"{', '.join(missing)}; every stats field must survive "
                    f"snapshot/delta")


# --------------------------------------------------------------------------
# C302 — ClusterResult counters must be populated by MetricsCollector
# --------------------------------------------------------------------------


def _self_attributes(cls: ast.ClassDef) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                attrs.add(target.attr)
    return attrs


@rule(id="C302", name="collector-coverage", scope="project")
def check_collector_coverage(project: Project) -> Iterator[Finding]:
    """A ``cc_*``/``ce_*`` counter on ``ClusterResult`` that no
    ``MetricsCollector`` attribute backs.

    Why: cluster summaries copy controller-health counters straight off
    the collector (``cluster._summarise``).  A result field added
    without the collector attribute (and the ``record_ce_batch`` fold)
    reports a constant 0 — the dashboards look healthy while the counter
    was never wired, which is exactly how observability rots.
    """
    collectors: Set[str] = set()
    result_sites = []
    for module in project.modules:
        collector = _find_class(module, "MetricsCollector")
        if collector is not None:
            collectors |= _self_attributes(collector)
        result = _find_class(module, "ClusterResult")
        if result is not None and _is_dataclass(result):
            result_sites.append((module, result))
    if not collectors:
        return
    for module, result in result_sites:
        for name, line in _dataclass_fields(result).items():
            if not name.startswith(("cc_", "ce_")):
                continue
            if name not in collectors:
                yield module.finding(
                    "C302", line,
                    f"ClusterResult.{name} has no matching "
                    f"MetricsCollector attribute; the summary would "
                    f"report a constant")


# --------------------------------------------------------------------------
# C303 — queue get() loops need a sentinel or timeout
# --------------------------------------------------------------------------


def _is_queue_get(node: ast.Call) -> bool:
    """A blocking queue receive: zero-positional-arg ``.get()`` (a dict
    ``.get`` always takes a key) with at most block/timeout keywords."""
    if not (isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"):
        return False
    if node.args:
        return False
    return all(kw.arg in ("block", "timeout") for kw in node.keywords)


def _has_timeout(node: ast.Call) -> bool:
    return any(kw.arg == "timeout" for kw in node.keywords)


def _loop_has_sentinel_exit(loop: ast.While) -> bool:
    """An ``if <compare is/==>: return/break`` anywhere in the loop body —
    the shutdown-sentinel shape (``if item is self._SHUTDOWN: return``)."""
    for node in ast.walk(loop):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare)
                and any(isinstance(op, (ast.Is, ast.Eq))
                        for op in test.ops)):
            continue
        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, (ast.Return, ast.Break)):
                    return True
    return False


@rule(id="C303", name="queue-sentinel")
def check_queue_sentinel(module: Module) -> Iterator[Finding]:
    """A ``while`` loop blocking on ``queue.get()`` with no sentinel exit
    and no timeout.

    Why: the PR-1 hang class — an executor parked on ``get()`` after the
    batch completes idles forever, leaking worker processes into every
    later batch sharing the environment.  Every consumer loop must
    either recognize a shutdown sentinel (``if item is _SHUTDOWN:
    return``) or bound the wait with a timeout; a loop that is meant to
    live as long as the simulation says so with a justified pragma.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.While):
            continue
        gets = [call for call in ast.walk(node)
                if isinstance(call, ast.Call) and _is_queue_get(call)]
        if not gets:
            continue
        if _loop_has_sentinel_exit(node):
            continue
        for call in gets:
            if not _has_timeout(call):
                yield module.finding(
                    "C303", call,
                    "blocking queue get() in a loop with no sentinel exit "
                    "or timeout (the PR-1 executor hang class)")

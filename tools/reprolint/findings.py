"""Finding objects and the committed-baseline file format.

A finding is one rule violation at one source location.  Its
``fingerprint`` deliberately excludes the line *number* — it is the rule
id, the file, and the stripped source line — so a committed baseline
survives unrelated edits above a grandfathered finding instead of
churning on every diff.  Two identical offending lines in one file share
a fingerprint; the baseline stores a count per fingerprint so adding a
*second* copy of a grandfathered sin is still a new finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str          # repo-root-relative, posix separators
    line: int          # 1-based
    message: str
    snippet: str = ""  # stripped source line, used for the fingerprint

    @property
    def fingerprint(self) -> str:
        return f"{self.rule_id}::{self.path}::{self.snippet}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


def fingerprint_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[str, int]:
    """fingerprint -> grandfathered occurrence count."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}: "
                         f"{data.get('version')!r}")
    counts: Dict[str, int] = {}
    for entry in data.get("findings", []):
        counts[entry["fingerprint"]] = int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    counts = fingerprint_counts(findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [{"fingerprint": fp, "count": counts[fp]}
                     for fp in sorted(counts)],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_against_baseline(findings: List[Finding],
                           baseline: Dict[str, int]
                           ) -> Tuple[List[Finding], List[Finding]]:
    """(new, grandfathered): each baseline fingerprint absorbs up to its
    recorded count of matching findings; the rest are new."""
    budget = dict(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        remaining = budget.get(finding.fingerprint, 0)
        if remaining > 0:
            budget[finding.fingerprint] = remaining - 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old

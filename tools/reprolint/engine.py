"""File discovery, parsing, pragma handling, and rule dispatch.

The engine turns a set of paths into :class:`Module` objects (path,
dotted name, AST, per-line pragma suppressions) bundled in a
:class:`Project`, runs every registered rule over them, and filters the
findings through the pragmas.  It is deliberately free of repo-specific
knowledge: everything Thunderbolt-shaped lives in the rule modules.

Module naming
-------------
A file's dotted module name is derived from its path relative to the
project root, with a leading ``src/`` stripped (the repo's layout) and a
trailing ``__init__`` dropped — ``src/repro/ce/depgraph.py`` becomes
``repro.ce.depgraph`` and ``src/repro/ce/__init__.py`` becomes
``repro.ce``.  Rules use these names for the import graph.

Pragmas
-------
``# reprolint: disable=D101`` on the line a finding anchors to
suppresses it; several rules separate with commas, and ``disable=all``
suppresses every rule on the line.  Rule slugs (``set-iteration``) work
too.  Findings anchor at the AST node's first line, so the pragma goes
on the first physical line of a multi-line statement.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.findings import Finding
from tools.reprolint.registry import all_rules, resolve_rule_token

PRAGMA_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass
class Module:
    """One parsed source file."""

    path: Path                      # absolute
    relpath: str                    # project-root-relative, posix
    name: str                       # dotted module name
    tree: ast.Module
    lines: List[str]
    #: line number (1-based) -> lower-cased suppression tokens resolved
    #: to rule ids ("all" suppresses everything on the line).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule_id: str, node_or_line, message: str) -> Finding:
        line = getattr(node_or_line, "lineno", node_or_line)
        return Finding(rule_id=rule_id, path=self.relpath, line=line,
                       message=message, snippet=self.snippet(line))

    def suppressed(self, finding: Finding) -> bool:
        tokens = self.suppressions.get(finding.line)
        if not tokens:
            return False
        return "all" in tokens or finding.rule_id in tokens


@dataclass
class Project:
    """Every scanned module plus the intra-project import graph."""

    root: Path
    modules: List[Module]
    by_name: Dict[str, Module] = field(default_factory=dict)
    #: module name -> [(imported module name, line)], TYPE_CHECKING-guarded
    #: imports excluded (they never execute, so they cannot create runtime
    #: layering or cycle problems).
    imports: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_name = {module.name: module for module in self.modules}
        for module in self.modules:
            self.imports[module.name] = module_imports(module)


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = PRAGMA_PATTERN.search(line)
        if not match:
            continue
        tokens = set()
        for token in match.group(1).split(","):
            token = token.strip()
            if not token:
                continue
            tokens.add("all" if token.lower() == "all"
                       else resolve_rule_token(token))
        if tokens:
            suppressions[index] = tokens
    return suppressions


def module_name_for(path: Path, root: Path) -> str:
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:  # outside the root: name from the file stem
        relative = Path(path.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_module(path: Path, root: Path) -> Module:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    try:
        relative = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:  # outside the root: keep the absolute path
        relative = path.resolve().as_posix()
    return Module(path=path.resolve(), relpath=relative,
                  name=module_name_for(path, root), tree=tree, lines=lines,
                  suppressions=parse_suppressions(lines))


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files;
    ``__pycache__`` is skipped."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def load_project(paths: Sequence[Path], root: Optional[Path] = None
                 ) -> Project:
    root = (root or Path.cwd()).resolve()
    modules = [load_module(path, root) for path in discover_files(paths)]
    return Project(root=root, modules=modules)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING")


def module_imports(module: Module) -> List[Tuple[str, int]]:
    """(imported dotted name, line) pairs for every executable import.

    ``from pkg import name`` records ``pkg.name`` — rules that need the
    *module* can truncate against the known module set.  Relative imports
    are resolved against the importing module's package.
    """
    imports: List[Tuple[str, int]] = []
    guarded: Set[int] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                for sub in ast.walk(child):
                    guarded.add(id(sub))
    package_parts = module.name.split(".")[:-1] if module.name else []
    for node in ast.walk(module.tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                drop = node.level - 1  # level 1 = the module's own package
                base_parts = package_parts[:len(package_parts) - drop] \
                    if drop <= len(package_parts) else []
                base = ".".join(base_parts + ([node.module]
                                              if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                target = f"{base}.{alias.name}" if base else alias.name
                imports.append((target, node.lineno))
    return imports


def run_rules(project: Project,
              select: Optional[Set[str]] = None) -> List[Finding]:
    """Every registered rule over every module, pragma-filtered, sorted by
    (path, line, rule id)."""
    findings: List[Finding] = []
    for info in all_rules():
        if select is not None and info.id not in select:
            continue
        if info.scope == "file":
            for module in project.modules:
                findings.extend(info.check(module))
        else:
            findings.extend(info.check(project))
    by_path = {module.relpath: module for module in project.modules}
    kept = [finding for finding in findings
            if finding.path not in by_path
            or not by_path[finding.path].suppressed(finding)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return kept


def lint_paths(paths: Iterable[str],
               root: Optional[Path] = None,
               select: Optional[Set[str]] = None) -> List[Finding]:
    """Programmatic entry point used by the tests."""
    project = load_project([Path(p) for p in paths], root=root)
    return run_rules(project, select=select)

"""reprolint — AST-based determinism, layering, and consistency linter.

Stdlib-only static analysis specialized to this repository's invariants.
Run it as ``python -m tools.reprolint src/``; see
``docs/STATIC_ANALYSIS.md`` for the rule catalog and workflow.
"""

from tools.reprolint.engine import lint_paths, load_project, run_rules
from tools.reprolint.findings import Finding
from tools.reprolint.registry import all_rules, rule
from tools.reprolint import rules  # noqa: F401  (registers the catalog)

__all__ = ["Finding", "all_rules", "lint_paths", "load_project",
           "rule", "run_rules"]

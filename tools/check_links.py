#!/usr/bin/env python
"""Fail on broken intra-repo links in the repo's Markdown documentation.

Scans every ``*.md`` at the repository root plus every ``*.md`` under
``docs/`` for Markdown links and images.  External targets
(``http(s)://``, ``mailto:``) are ignored; everything else must resolve
to an existing file or directory relative to the linking document, and a
``#fragment`` pointing into a Markdown file must match one of that
file's headings (GitHub-style slugs).

Additionally, every document under ``docs/`` must be *reachable* from
``README.md`` through Markdown links (self-links and links from pages
that are themselves unreachable don't count).  A reference doc a reader
starting at the README can never navigate to is invisible, so an orphan
fails the check the same way a broken link does.

Run from anywhere:  ``python tools/check_links.py``
Exits 1 if any link is broken or any doc is orphaned (counts are
printed), 0 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` and ``![alt](target)``; stops at the first unescaped
#: closing parenthesis, which is fine for the links this repo writes.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def documents():
    found = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        found.extend(sorted(docs.rglob("*.md")))
    return [path for path in found if path.is_file()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def strip_code_spans(text: str) -> str:
    """Remove fenced code blocks so example snippets aren't link-checked."""
    out, in_code_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if not in_code_fence:
            out.append(line)
    return "\n".join(out)


def check_document(path: Path, outgoing: set) -> list:
    """Validate one document's links; fills ``outgoing`` with the resolved
    non-self link targets (the edges of the reachability graph)."""
    problems = []
    for target in LINK_PATTERN.findall(strip_code_spans(
            path.read_text(encoding="utf-8"))):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                            f"-> {target}")
            continue
        if resolved != path:
            outgoing.add(resolved)
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor "
                    f"#{fragment} in {base or path.name}")
    return problems


def orphaned_docs(links: dict) -> list:
    """Documents under ``docs/`` a reader cannot reach from README.md by
    following Markdown links (BFS over the link graph; self-links and
    links out of unreachable pages don't confer reachability)."""
    docs = REPO_ROOT / "docs"
    if not docs.is_dir():
        return []
    reachable = set()
    frontier = [(REPO_ROOT / "README.md").resolve()]
    while frontier:
        document = frontier.pop()
        if document in reachable:
            continue
        reachable.add(document)
        frontier.extend(links.get(document, ()))
    return [f"{path.relative_to(REPO_ROOT)}: orphaned (unreachable from "
            f"README.md through Markdown links)"
            for path in sorted(docs.rglob("*.md"))
            if path.resolve() not in reachable]


def main() -> int:
    checked = documents()
    problems = []
    links: dict = {}
    for document in checked:
        outgoing: set = set()
        problems.extend(check_document(document, outgoing))
        links[document.resolve()] = outgoing
    problems.extend(orphaned_docs(links))
    for problem in problems:
        print(problem)
    print(f"checked {len(checked)} documents: "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
